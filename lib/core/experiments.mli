(** Reproduction of every table and figure of the paper's evaluation, over
    a {!Pipeline} instance.

    Naming follows the paper: Table 1 (footprint), Figure 2 (cumulative
    popularity), the Section 4.1 reuse statistics, Table 2 (block-type mix
    and determinism), Figure 3 (trace-building worked example — exercised
    in the test suite), Table 3 (i-cache miss rates) and Table 4 (fetch
    bandwidth), plus the threshold/CFA ablation the paper's Section 5.1
    discussion calls for. *)

(** {2 Characterization (Section 4)} *)

val table1 : Pipeline.t -> Stc_profile.Footprint.t

val print_table1 : Stc_profile.Footprint.t -> unit

val figure2 : ?max_blocks:int -> ?step:int -> Pipeline.t -> (int * float) list
(** Points (n, cumulative share of dynamic references). *)

val print_figure2 : Pipeline.t -> unit
(** The curve plus the headline numbers (blocks for 90 % and 99 %). *)

type reuse_stats = {
  tracked_share : float;  (** Popularity share of the tracked set (0.75). *)
  below_100 : float;
  below_250 : float;
  samples : int;
}

val reuse : ?share:float -> Pipeline.t -> reuse_stats

val print_reuse : reuse_stats -> unit

val table2 : Pipeline.t -> Stc_profile.Determinism.t

val print_table2 : Stc_profile.Determinism.t -> unit

(** {2 Simulation (Section 7)} *)

type sim_config = {
  exec_threshold : int;  (** Pass-2 Exec Threshold of the STC builder. *)
  branch_threshold : float;
  line_bytes : int;
  miss_penalty : int;
  tc_entries : int;
  grid : (int * int list) list;
      (** (cache KB, CFA KB list) — Table 3/4's row structure. *)
}

val default_sim_config : sim_config
(** The paper's grid: 8/(2,4,6), 16/(4,8,12), 32/(4,8,16,24), 64/(8,16,24);
    32-byte lines, 5-cycle miss penalty, 256-entry trace cache. *)

type variant = Direct | Two_way | Victim | Ideal | Trace_cache | Tc_ideal

val variant_name : variant -> string
(** Stable export name ("direct", "2-way", "victim", "ideal",
    "trace-cache", "tc-ideal"), used in JSONL cell records. *)

type row = {
  layout : string;
      (** A {!Stc_layout.Algo} registry name: "orig" and "P&H" for the
          baselines, then the CFA-family algorithms selected for the
          grid ("Torr", "auto", "ops", "codestitcher", "exttsp", ...). *)
  cache_kb : int;
  cfa_kb : int option;  (** [None] when the layout has no CFA (orig, P&H). *)
  variant : variant;
  miss_pct : float;  (** I-cache misses per 100 instructions. *)
  bandwidth : float;  (** Instructions per fetch cycle. *)
  instrs_between_taken : float;
  tc_hit_pct : float;  (** Trace-cache hit rate; 0 when no trace cache. *)
  assoc : int;  (** I-cache associativity (1 on the paper's grid). *)
  policy : string;  (** Replacement policy name: "lru", "srrip", "trrip". *)
  prefetch : bool;  (** FDIP enabled. *)
  evictions : int;  (** Non-LRU replacement evictions (0 under LRU). *)
  pf_issued : int;  (** FDIP prefetches issued (0 without FDIP). *)
  pf_useful : int;
  pf_late : int;
}

val row_to_string : row -> string
(** One stable, locale-independent line per row ([%.6f] floats) — the
    golden-regression snapshot format of [tools/golden]. Covers the
    paper-grid fields only; {!ext_row_to_string} adds the extended
    dimensions. *)

val ext_row_to_string : row -> string
(** Stable one-line rendering of an {!extended}-grid row: layout, cache,
    CFA, associativity, policy, prefetch flag, miss rate, bandwidth and
    the prefetch/eviction counters ([tools/golden]'s fourth snapshot). *)

val resolve_layouts :
  string list -> (Stc_layout.Algo.t list, string) result
(** Resolve user-supplied [--layouts] names against the
    {!Stc_layout.Algo} registry. Accepts names, slugs and aliases,
    case-insensitively; [Error] carries a message naming the offender
    and listing every valid choice. Baseline algorithms ("orig",
    "P&H") are always simulated and may not be selected here — naming
    one is an [Error] saying so. *)

val simulate :
  ?ctx:Run.ctx ->
  ?config:sim_config ->
  ?streamed:bool ->
  ?fused:bool ->
  ?layouts:string list ->
  Pipeline.t ->
  row list
(** Run every configuration of Tables 3 and 4 once over the Test trace
    (each row is one trace-driven simulation). Layout construction is a
    serial prefix; the cells then run on [ctx.jobs] domains ([1] =
    in-process serial, the default).

    [?layouts] selects which CFA-family algorithms populate the per-CFA
    rows (default: every registered one, in registration order — see
    {!Stc_layout.Algo.all}). Names are resolved as in
    {!resolve_layouts}; an unknown name raises [Invalid_argument] with
    the same message. The "orig" and "P&H" baseline rows are always
    present. The trace-cache rows of Table 4 appear only when "ops" is
    selected (they are defined over the ops layout).

    By default ([~fused:true]) cells sharing a layout replay as one
    {!Stc_fetch.Engine.Bank} sweep over that layout's trace — the packed
    image is decoded once per {e layout} instead of once per cell — and
    a domain pool self-schedules whole fused groups.  Rows, metric
    exports, store keys, cached-hit short-circuiting (a store-warm cell
    drops out of its group's sweep) and per-cell progress ticks are
    byte-identical to [~fused:false], the per-cell reference path kept
    for differential checking (--no-fuse on the CLI).

    With [~streamed:true] each cell replays the Test trace through a
    bounded segment pipeline ({!Stc_trace.Source} →
    {!Stc_fetch.Stream} → {!Stc_fetch.Engine.run_stream}) instead of a
    fully materialized {!Stc_fetch.Packed} image; results and exported
    counters are identical by construction, so streamed cells share
    artifact-store keys with materialized ones. With [ctx.metrics], the whole grid
    runs inside a [simulate-grid] span (layout construction in child
    spans), the fetch engine accumulates its [engine.*] counters, and
    every simulation emits one [table34.cell] event carrying the row plus
    the cell's i-cache/trace-cache counters ([cfa_kb] is JSON [null] for
    CFA-less layouts). The registry contents — counter totals and event
    order included — are identical at any job count: parallel cells record
    into per-cell shards merged in input order. With [ctx.progress], a
    "simulate" progress line is emitted every 10 cells.

    With [ctx.store], the serial prefix loads previously built layouts by
    content key, and each cell consults the store for its engine result
    before simulating (and saves it after). A result hit re-registers the
    [engine.*] counters ({!Stc_fetch.Engine.publish}) and emits the same
    [table34.cell] event a simulation would, so apart from the [store.*]
    counters a warm run's registry is byte-identical to a cold one. *)

val extended :
  ?ctx:Run.ctx ->
  ?config:sim_config ->
  ?streamed:bool ->
  ?fused:bool ->
  ?layouts:string list ->
  Pipeline.t ->
  row list
(** The post-paper hardware grid: the first two cache sizes of
    [config.grid] (each at its first CFA point), every selected layout
    (plus "orig"), 4-way set-associative, under the cross product of
    replacement policy (LRU, SRRIP, TRRIP) and FDIP prefetching (off,
    on). TRRIP's per-line temperature table is derived from each
    layout's own hotness ({!Stc_cachesim.Temperature.of_blocks}) in the
    serial prefix. Execution, fusing, streaming, store caching, metrics
    ([extended.cell] events, with the policy/prefetch fields and
    counters appended) and determinism guarantees are exactly
    {!simulate}'s. *)

val print_extended : row list -> unit
(** The extended grid as a flat table plus the FDIP-vs-layout headline
    comparison at the smallest extended cache size. *)

val print_table3 : row list -> unit

val print_table4 : row list -> unit

val print_sequentiality : row list -> unit
(** The "instructions between taken branches" headline (orig vs ops). *)

(** {2 Ablation} *)

type ablation_row = {
  a_exec : int;
  a_branch : float;
  a_cfa_kb : int;
  a_miss_pct : float;
  a_bandwidth : float;
}

val ablation :
  ?ctx:Run.ctx ->
  ?streamed:bool ->
  ?fused:bool ->
  ?cache_kb:int ->
  ?exec_thresholds:int list ->
  ?branch_thresholds:float list ->
  ?cfa_kbs:int list ->
  Pipeline.t ->
  ablation_row list
(** Sweep the STC parameters (ops seeds) at one cache size. Layout
    construction is a serial prefix; sweep points run on [ctx.jobs]
    domains with the same determinism guarantee as {!simulate}.
    [~streamed:true] replays each point through the segment pipeline and
    [~fused:false] opts out of fused replay, exactly as in {!simulate}.
    (Every ablation point builds its own ops layout, so fused groups are
    singletons here — fusing changes scheduling, never results.) With
    [ctx.metrics], each sweep point emits one [ablation.cell] event.
    [ctx.store] caches the swept layouts and per-point engine results
    exactly as in {!simulate}. *)

val ablation_row_to_string : ablation_row -> string
(** Stable one-line rendering, as {!row_to_string}. *)

val print_ablation : ablation_row list -> unit
