(* Dump the contents of an artifact store directory (see Stc_store).

     store_inspect DIR [--json] [--strict]

   One line per entry: kind, key, format version, payload size, and
   whether the container checksum verifies. Chunked trace entries
   (Stc_store.Chunked: one trace-man manifest plus trace-seg segment
   containers) additionally get one summary line each — segment count,
   total segment bytes, and per-segment status (CRC, content hash
   against the manifest, missing files). --json emits one JSON object
   per entry (and per manifest summary) instead of the table. --strict
   exits 1 when any entry is corrupt or unreadable, or when any chunked
   entry has a damaged, drifted or missing segment — the store-smoke CI
   alias runs it after a warm pass to assert the cache survived intact.

   Exit codes: 0 ok, 1 corrupt entries under --strict, 2 usage error. *)

module Store = Stc_store
module Json = Stc_obs.Json
module Tbl = Stc_util.Tbl
module Fnv = Stc_util.Fnv
module Segment = Stc_trace.Segment

let usage () =
  prerr_endline "usage: store_inspect DIR [--json] [--strict]";
  exit 2

let parse_args () =
  let dir = ref None and json = ref false and strict = ref false in
  List.iter
    (function
      | "--json" -> json := true
      | "--strict" -> strict := true
      | a when String.length a > 0 && a.[0] = '-' -> usage ()
      | a -> ( match !dir with None -> dir := Some a | Some _ -> usage ()))
    (List.tl (Array.to_list Sys.argv));
  match !dir with None -> usage () | Some d -> (d, !json, !strict)

(* ---------- chunked-entry summaries ---------- *)

type seg_status = Seg_ok of int  (** payload bytes *) | Seg_bad of string

type chunk_summary = {
  c_key : string;
  c_blocks : int;
  c_segments : int;
  c_bytes : int;  (** total payload bytes across intact segments *)
  c_bad : (int * string) list;  (** segment index, what is wrong *)
}

(* Validate one segment of a chunked entry the way Chunked.source would:
   the container must read back (CRC included), decode as a segment of
   the manifest's recorded length, and its ids must fold to their slice
   of the manifest content hash chain. *)
let check_segment dir ~key ~manifest ~index ~base ~hash =
  let sk = Store.Chunked.seg_key key index in
  let path =
    Filename.concat dir
      (Filename.concat Store.Chunked.segment_kind (Store.Key.hex sk ^ ".bin"))
  in
  if not (Sys.file_exists path) then (Seg_bad "missing", hash)
  else
    match Store.payload_of_file path with
    | None -> (Seg_bad "damaged container", hash)
    | Some payload -> (
        match Store.Chunked.decode_segment ~base payload with
        | exception Store.Corrupt m -> (Seg_bad ("corrupt: " ^ m), hash)
        | seg ->
            let expect = manifest.Store.Chunked.m_seg_lens.(index) in
            if Segment.length seg <> expect then
              ( Seg_bad
                  (Printf.sprintf "length %d, manifest says %d"
                     (Segment.length seg) expect),
                hash )
            else begin
              let h = ref hash in
              Segment.iter (fun id -> h := Fnv.int !h id) seg;
              (Seg_ok (String.length payload), !h)
            end)

let summarize_chunk dir (e : Store.entry) =
  let key = Store.Key.of_hex e.Store.e_key in
  match Store.payload_of_file e.Store.e_path with
  | None -> None
  | Some payload -> (
      match Store.Chunked.decode_manifest payload with
      | exception Store.Corrupt _ -> None
      | m ->
          let n = Array.length m.Store.Chunked.m_seg_lens in
          let bytes = ref 0 and bad = ref [] and hash = ref Fnv.empty in
          let base = ref 0 in
          for i = 0 to n - 1 do
            let status, h =
              check_segment dir ~key ~manifest:m ~index:i ~base:!base
                ~hash:!hash
            in
            hash := h;
            base := !base + m.Store.Chunked.m_seg_lens.(i);
            match status with
            | Seg_ok b -> bytes := !bytes + b
            | Seg_bad why -> bad := (i, why) :: !bad
          done;
          let bad =
            if !bad = [] && !hash <> m.Store.Chunked.m_ids_hash then
              [ (-1, "content hash drift") ]
            else List.rev !bad
          in
          Some
            {
              c_key = e.Store.e_key;
              c_blocks = m.Store.Chunked.m_total_blocks;
              c_segments = n;
              c_bytes = !bytes;
              c_bad = bad;
            })

let () =
  let dir, json, strict = parse_args () in
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "store_inspect: %s: not a directory\n" dir;
    exit 2
  end;
  let entries = Store.scan dir in
  let bad = List.filter (fun e -> not e.Store.e_ok) entries in
  let chunks =
    List.filter_map
      (fun (e : Store.entry) ->
        if e.Store.e_ok && e.Store.e_kind = Store.Chunked.manifest_kind then
          summarize_chunk dir e
        else None)
      entries
  in
  let bad_chunks = List.filter (fun c -> c.c_bad <> []) chunks in
  if json then begin
    List.iter
      (fun (e : Store.entry) ->
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("path", Json.Str e.e_path);
                  ("kind", Json.Str e.e_kind);
                  ("key", Json.Str e.e_key);
                  ("version", Json.Int e.e_version);
                  ("payload_bytes", Json.Int e.e_payload_bytes);
                  ("ok", Json.Bool e.e_ok);
                  ( "reason",
                    match e.e_reason with
                    | Some r -> Json.Str r
                    | None -> Json.Null );
                ])))
      entries;
    List.iter
      (fun c ->
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("chunked", Json.Str c.c_key);
                  ("blocks", Json.Int c.c_blocks);
                  ("segments", Json.Int c.c_segments);
                  ("segment_bytes", Json.Int c.c_bytes);
                  ("ok", Json.Bool (c.c_bad = []));
                  ( "bad_segments",
                    Json.List
                      (List.map
                         (fun (i, why) ->
                           Json.Obj
                             [
                               ("segment", Json.Int i); ("reason", Json.Str why);
                             ])
                         c.c_bad) );
                ])))
      chunks
  end
  else begin
    let t =
      Tbl.create
        ~headers:
          [
            ("kind", Tbl.Left);
            ("key", Tbl.Left);
            ("ver", Tbl.Right);
            ("bytes", Tbl.Right);
            ("crc", Tbl.Left);
          ]
    in
    List.iter
      (fun (e : Store.entry) ->
        Tbl.add_row t
          [
            e.e_kind;
            e.e_key;
            string_of_int e.e_version;
            string_of_int e.e_payload_bytes;
            (match e.e_reason with
            | None -> "ok"
            | Some r -> "CORRUPT: " ^ r);
          ])
      entries;
    Tbl.print t;
    Printf.printf "%d entries, %d corrupt\n" (List.length entries)
      (List.length bad);
    if chunks <> [] then begin
      Printf.printf "\nchunked traces:\n";
      List.iter
        (fun c ->
          Printf.printf "  %s: %d blocks in %d segments, %d bytes — %s\n"
            c.c_key c.c_blocks c.c_segments c.c_bytes
            (match c.c_bad with
            | [] -> "all segments ok"
            | l ->
                String.concat ", "
                  (List.map
                     (fun (i, why) ->
                       if i < 0 then why
                       else Printf.sprintf "segment %d %s" i why)
                     l)))
        chunks
    end
  end;
  if strict && (bad <> [] || bad_chunks <> []) then exit 1
