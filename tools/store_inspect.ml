(* Dump the contents of an artifact store directory (see Stc_store).

     store_inspect DIR [--json] [--strict]

   One line per entry: kind, key, format version, payload size, and
   whether the container checksum verifies. --json emits one JSON object
   per entry instead of the table. --strict exits 1 when any entry is
   corrupt or unreadable — the store-smoke CI alias runs it after a warm
   pass to assert the cache survived intact.

   Exit codes: 0 ok, 1 corrupt entries under --strict, 2 usage error. *)

module Store = Stc_store
module Json = Stc_obs.Json
module Tbl = Stc_util.Tbl

let usage () =
  prerr_endline "usage: store_inspect DIR [--json] [--strict]";
  exit 2

let parse_args () =
  let dir = ref None and json = ref false and strict = ref false in
  List.iter
    (function
      | "--json" -> json := true
      | "--strict" -> strict := true
      | a when String.length a > 0 && a.[0] = '-' -> usage ()
      | a -> ( match !dir with None -> dir := Some a | Some _ -> usage ()))
    (List.tl (Array.to_list Sys.argv));
  match !dir with None -> usage () | Some d -> (d, !json, !strict)

let () =
  let dir, json, strict = parse_args () in
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "store_inspect: %s: not a directory\n" dir;
    exit 2
  end;
  let entries = Store.scan dir in
  let bad = List.filter (fun e -> not e.Store.e_ok) entries in
  if json then
    List.iter
      (fun (e : Store.entry) ->
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("path", Json.Str e.e_path);
                  ("kind", Json.Str e.e_kind);
                  ("key", Json.Str e.e_key);
                  ("version", Json.Int e.e_version);
                  ("payload_bytes", Json.Int e.e_payload_bytes);
                  ("ok", Json.Bool e.e_ok);
                  ( "reason",
                    match e.e_reason with
                    | Some r -> Json.Str r
                    | None -> Json.Null );
                ])))
      entries
  else begin
    let t =
      Tbl.create
        ~headers:
          [
            ("kind", Tbl.Left);
            ("key", Tbl.Left);
            ("ver", Tbl.Right);
            ("bytes", Tbl.Right);
            ("crc", Tbl.Left);
          ]
    in
    List.iter
      (fun (e : Store.entry) ->
        Tbl.add_row t
          [
            e.e_kind;
            e.e_key;
            string_of_int e.e_version;
            string_of_int e.e_payload_bytes;
            (match e.e_reason with
            | None -> "ok"
            | Some r -> "CORRUPT: " ^ r);
          ])
      entries;
    Tbl.print t;
    Printf.printf "%d entries, %d corrupt\n" (List.length entries)
      (List.length bad)
  end;
  if strict && bad <> [] then exit 1
