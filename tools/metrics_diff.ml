(* Compare two metrics JSONL exports (see Stc_obs.Export for the schema)
   and exit non-zero when deterministic values drift beyond a tolerance.

     metrics_diff A.jsonl B.jsonl [--tolerance PCT] [--ignore PREFIX]...

   Compared: counters, gauges, histogram totals and buckets, span call
   counts, and every numeric/string field of events (paired per kind, in
   order); the comparison itself lives in Stc_obs.Diff, shared with the
   golden-regression harness (tools/golden). Ignored: span "seconds"
   (wall clock is never deterministic), plus any metric whose name — or
   event whose kind — starts with an --ignore prefix. The canonical use
   is "--ignore store." to compare a cold against a warm artifact-store
   run, whose only intended difference is the store's own hit/miss
   counters. Tolerance is relative, in percent; the default 0 demands
   exact equality, which is what two same-seed runs must achieve.

   A missing, unreadable, unparsable or *empty* input is a hard error:
   an export with zero records can only green-light a vacuous diff, so
   CI must never see it as success.

   Exit codes: 0 no drift, 1 drift, 2 usage or input error. *)

let usage () =
  prerr_endline
    "usage: metrics_diff A.jsonl B.jsonl [--tolerance PCT] [--ignore PREFIX]...";
  exit 2

let parse_args () =
  let files = ref [] and tolerance = ref 0.0 and ignores = ref [] in
  let rec go = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> tolerance := t /. 100.0
      | _ -> usage ());
      go rest
    | "--ignore" :: p :: rest ->
      ignores := p :: !ignores;
      go rest
    | a :: rest ->
      files := a :: !files;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ a; b ] -> (a, b, !tolerance, !ignores)
  | _ -> usage ()

let () =
  let file_a, file_b, tolerance, ignores = parse_args () in
  let load path =
    match Stc_obs.Diff.load_file path with
    | Ok records -> records
    | Error e ->
      Printf.eprintf "metrics_diff: %s\n" e;
      exit 2
  in
  let a = load file_a and b = load file_b in
  let drift, compared =
    Stc_obs.Diff.diff_records ~tolerance ~ignores ~a_label:file_a
      ~b_label:file_b a b
  in
  match drift with
  | [] ->
    Printf.printf "no drift: %s and %s agree (%d records)\n" file_a file_b
      compared
  | msgs ->
    List.iter print_endline msgs;
    Printf.printf "%d drifting record(s) between %s and %s\n" (List.length msgs)
      file_a file_b;
    exit 1
