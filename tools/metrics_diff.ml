(* Compare two metrics JSONL exports (see Stc_obs.Export for the schema)
   and exit non-zero when deterministic values drift beyond a tolerance.

     metrics_diff A.jsonl B.jsonl [--tolerance PCT] [--ignore PREFIX]...

   Compared: counters, gauges, histogram totals and buckets, span call
   counts, and every numeric/string field of events (paired per kind, in
   order). Ignored: span "seconds" (wall clock is never deterministic),
   plus any metric whose name — or event whose kind — starts with an
   --ignore prefix; ignored records are dropped from both files before
   pairing, so occurrence numbering stays aligned. The canonical use is
   "--ignore store." to compare a cold against a warm artifact-store run,
   whose only intended difference is the store's own hit/miss counters.
   Tolerance is relative, in percent; the default 0 demands exact
   equality, which is what two same-seed runs must achieve.

   Exit codes: 0 no drift, 1 drift, 2 usage or parse error. *)

module Json = Stc_obs.Json

let usage () =
  prerr_endline
    "usage: metrics_diff A.jsonl B.jsonl [--tolerance PCT] [--ignore PREFIX]...";
  exit 2

let parse_args () =
  let files = ref [] and tolerance = ref 0.0 and ignores = ref [] in
  let rec go = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> tolerance := t /. 100.0
      | _ -> usage ());
      go rest
    | "--ignore" :: p :: rest ->
      ignores := p :: !ignores;
      go rest
    | a :: rest ->
      files := a :: !files;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ a; b ] -> (a, b, !tolerance, !ignores)
  | _ -> usage ()

let read_records path =
  let ic =
    try open_in path
    with Sys_error e ->
      Printf.eprintf "metrics_diff: %s\n" e;
      exit 2
  in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  try Json.lines doc
  with Failure e ->
    Printf.eprintf "metrics_diff: %s: %s\n" path e;
    exit 2

let str_field name r =
  match Json.member name r with Some (Json.Str s) -> Some s | _ -> None

let record_type r = Option.value ~default:"?" (str_field "type" r)

(* --ignore filtering, applied before keying so both files number the
   surviving repeats identically. *)
let ignored ~ignores r =
  ignores <> []
  &&
  let tag =
    match record_type r with
    | "counter" | "gauge" | "histo" -> str_field "name" r
    | "event" -> str_field "kind" r
    | _ -> None
  in
  match tag with
  | None -> false
  | Some t -> List.exists (fun p -> String.starts_with ~prefix:p t) ignores

(* Identifying key per record; numbered suffix disambiguates repeats
   (events of the same kind are paired in emission order). *)
let keys records =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun r ->
      let base =
        match record_type r with
        | "meta" -> None
        | "counter" | "gauge" | "histo" ->
          Some ("metric:" ^ Option.value ~default:"?" (str_field "name" r))
        | "span" ->
          Some ("span:" ^ Option.value ~default:"?" (str_field "path" r))
        | "event" ->
          Some ("event:" ^ Option.value ~default:"?" (str_field "kind" r))
        | t -> Some ("unknown:" ^ t)
      in
      match base with
      | None -> None
      | Some base ->
        let n = Option.value ~default:0 (Hashtbl.find_opt seen base) in
        Hashtbl.replace seen base (n + 1);
        Some ((base, n), r))
    records

let drift = ref 0

let report fmt =
  Printf.ksprintf
    (fun s ->
      incr drift;
      print_endline s)
    fmt

let close_enough tolerance a b =
  a = b
  || abs_float (a -. b) <= tolerance *. Float.max (abs_float a) (abs_float b)

let rec compare_json ~tolerance ~ignore_seconds path a b =
  match (a, b) with
  | Json.Obj fa, Json.Obj fb ->
    let names = List.map fst fa @ List.filter (fun k -> not (List.mem_assoc k fa)) (List.map fst fb) in
    List.iter
      (fun k ->
        if not (ignore_seconds && k = "seconds") then
          match (List.assoc_opt k fa, List.assoc_opt k fb) with
          | Some va, Some vb ->
            compare_json ~tolerance ~ignore_seconds (path ^ "." ^ k) va vb
          | Some _, None -> report "%s: only in A" (path ^ "." ^ k)
          | None, Some _ -> report "%s: only in B" (path ^ "." ^ k)
          | None, None -> ())
      names
  | Json.List la, Json.List lb ->
    if List.length la <> List.length lb then
      report "%s: lengths differ (%d vs %d)" path (List.length la)
        (List.length lb)
    else
      List.iteri
        (fun i (va, vb) ->
          compare_json ~tolerance ~ignore_seconds
            (Printf.sprintf "%s[%d]" path i)
            va vb)
        (List.combine la lb)
  | a, b -> (
    match (Json.to_float a, Json.to_float b) with
    | Some fa, Some fb ->
      if not (close_enough tolerance fa fb) then
        report "%s: %g vs %g" path fa fb
    | _ ->
      if a <> b then
        report "%s: %s vs %s" path (Json.to_string a) (Json.to_string b))

let () =
  let file_a, file_b, tolerance, ignores = parse_args () in
  let load path =
    keys (List.filter (fun r -> not (ignored ~ignores r)) (read_records path))
  in
  let a = load file_a and b = load file_b in
  let tbl_b = Hashtbl.create 256 in
  List.iter (fun (k, r) -> Hashtbl.replace tbl_b k r) b;
  List.iter
    (fun ((base, n), ra) ->
      match Hashtbl.find_opt tbl_b (base, n) with
      | None -> report "%s#%d: only in %s" base n file_a
      | Some rb ->
        let ignore_seconds = record_type ra = "span" in
        compare_json ~tolerance ~ignore_seconds
          (Printf.sprintf "%s#%d" base n)
          ra rb)
    a;
  let tbl_a = Hashtbl.create 256 in
  List.iter (fun (k, r) -> Hashtbl.replace tbl_a k r) a;
  List.iter
    (fun ((base, n), _) ->
      if not (Hashtbl.mem tbl_a (base, n)) then
        report "%s#%d: only in %s" base n file_b)
    b;
  if !drift > 0 then begin
    Printf.printf "%d drifting record(s) between %s and %s\n" !drift file_a
      file_b;
    exit 1
  end
  else Printf.printf "no drift: %s and %s agree (%d records)\n" file_a file_b
         (List.length a)
