(* Summarize a Chrome trace_event JSON file produced by Stc_obs.Trace.

     trace_report TRACE.json [--top N] [--assert-utilization PCT]

   Reports total wall clock, a table of top-level slices (per-phase wall
   time), pool utilization per domain (share of the pool window each
   domain spent inside "pool.chunk" slices), per-domain engine segment
   windows ("engine.segment" Complete slices from streamed replays,
   with the block counts they carry), fused replay sweeps
   ("engine.fused" Complete slices, one per per-layout bank sweep with
   the number of cells it fused), the N slowest grid cells
   ("cell:..." slices, --top, default 10), and the artifact-store time
   split (store.hit / store.miss / store.write Complete events with
   their byte volumes).

   --assert-utilization PCT exits 1 unless the mean worker utilization
   over the pool window is at least PCT percent — the CI guard that the
   pool actually keeps its domains busy on a parallel grid.

   Exit codes: 0 ok, 1 assertion failure, 2 usage or input error. *)

module Json = Stc_obs.Json
module Tbl = Stc_util.Tbl

let usage () =
  prerr_endline
    "usage: trace_report TRACE.json [--top N] [--assert-utilization PCT]";
  exit 2

let parse_args () =
  let file = ref None and top = ref 10 and assert_util = ref None in
  let rec go = function
    | [] -> ()
    | "--top" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n > 0 -> top := n
      | _ -> usage ());
      go rest
    | "--assert-utilization" :: v :: rest ->
      (match float_of_string_opt v with
      | Some p when p >= 0.0 && p <= 100.0 -> assert_util := Some p
      | _ -> usage ());
      go rest
    | a :: rest ->
      (match !file with None -> file := Some a | Some _ -> usage ());
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match !file with
  | Some f -> (f, !top, !assert_util)
  | None -> usage ()

(* ---------- event and slice extraction ---------- *)

type ev = {
  e_name : string;
  e_ph : string;
  e_ts : float;  (* microseconds *)
  e_dur : float;
  e_tid : int;
  e_bytes : int;
}

let ev_of_json j =
  let str k = match Json.member k j with Some (Json.Str s) -> s | _ -> "" in
  let num k =
    match Option.bind (Json.member k j) Json.to_float with
    | Some f -> f
    | None -> 0.0
  in
  let tid = match Json.member "tid" j with Some (Json.Int i) -> i | _ -> 0 in
  let bytes =
    match Option.bind (Json.member "args" j) (Json.member "bytes") with
    | Some (Json.Int b) -> b
    | _ -> 0
  in
  {
    e_name = str "name";
    e_ph = str "ph";
    e_ts = num "ts";
    e_dur = num "dur";
    e_tid = tid;
    e_bytes = bytes;
  }

type slice = {
  s_name : string;
  s_tid : int;
  s_start : float;
  s_dur : float;
  s_depth : int;
  s_bytes : int;
}

(* Pair B/E per tid into slices (events are in emission order per tid in
   the file); X events become slices directly at the current depth.
   Unbalanced events are counted, not fatal: a ring that filled up drops
   its tail and we still want the report. *)
let slices events =
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks tid s;
      s
  in
  let out = ref [] and unbalanced = ref 0 in
  List.iter
    (fun e ->
      let st = stack e.e_tid in
      match e.e_ph with
      | "B" -> st := (e.e_name, e.e_ts) :: !st
      | "E" -> (
        match !st with
        | (name, t0) :: rest when name = e.e_name ->
          st := rest;
          out :=
            {
              s_name = name;
              s_tid = e.e_tid;
              s_start = t0;
              s_dur = e.e_ts -. t0;
              s_depth = List.length rest;
              s_bytes = e.e_bytes;
            }
            :: !out
        | _ -> incr unbalanced)
      | "X" ->
        out :=
          {
            s_name = e.e_name;
            s_tid = e.e_tid;
            s_start = e.e_ts;
            s_dur = e.e_dur;
            s_depth = List.length !st;
            s_bytes = e.e_bytes;
          }
          :: !out
      | _ -> ())
    events;
  Hashtbl.iter (fun _ st -> unbalanced := !unbalanced + List.length !st) stacks;
  (List.rev !out, !unbalanced)

(* ---------- report sections ---------- *)

let fus us =
  if us >= 1e6 then Printf.sprintf "%.2fs" (us /. 1e6)
  else Printf.sprintf "%.1fms" (us /. 1e3)

let section title = Printf.printf "-- %s --\n" title

(* first-seen-order grouping of (key, value) pairs *)
let group_by key value items =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun it ->
      let k = key it in
      (match Hashtbl.find_opt tbl k with
      | Some l -> l := value it :: !l
      | None ->
        Hashtbl.replace tbl k (ref [ value it ]);
        order := k :: !order))
    items;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let top_level_table slices =
  let tops = List.filter (fun s -> s.s_depth = 0) slices in
  if tops <> [] then begin
    section "top-level slices";
    let tbl =
      Tbl.create
        ~headers:
          [
            ("name", Tbl.Left);
            ("calls", Tbl.Right);
            ("total", Tbl.Right);
            ("mean", Tbl.Right);
          ]
    in
    List.iter
      (fun (name, durs) ->
        let n = List.length durs in
        let total = List.fold_left ( +. ) 0.0 durs in
        Tbl.add_row tbl
          [ name; string_of_int n; fus total; fus (total /. float_of_int n) ])
      (group_by (fun s -> s.s_name) (fun s -> s.s_dur) tops);
    print_string (Tbl.render tbl);
    print_newline ()
  end

(* Per-domain busy time inside "pool.chunk" slices over the shared pool
   window (first chunk start to last chunk end across all domains).
   Returns the mean utilization over participating domains, or None when
   the trace has no pool activity. *)
let pool_utilization slices =
  let chunks = List.filter (fun s -> s.s_name = "pool.chunk") slices in
  match chunks with
  | [] -> None
  | c0 :: _ ->
    let lo, hi =
      List.fold_left
        (fun (lo, hi) s ->
          (Float.min lo s.s_start, Float.max hi (s.s_start +. s.s_dur)))
        (c0.s_start, c0.s_start +. c0.s_dur)
        chunks
    in
    let window = Float.max (hi -. lo) 1.0 (* at least 1us: no div by 0 *) in
    section "pool utilization";
    let tbl =
      Tbl.create
        ~headers:
          [
            ("domain", Tbl.Left);
            ("chunks", Tbl.Right);
            ("busy", Tbl.Right);
            ("util", Tbl.Right);
          ]
    in
    let utils =
      List.map
        (fun (tid, durs) ->
          let busy = List.fold_left ( +. ) 0.0 durs in
          let util = 100.0 *. busy /. window in
          Tbl.add_row tbl
            [
              Printf.sprintf "domain-%d" tid;
              string_of_int (List.length durs);
              fus busy;
              Printf.sprintf "%.0f%%" util;
            ];
          util)
        (List.sort compare
           (group_by (fun s -> s.s_tid) (fun s -> s.s_dur) chunks))
    in
    print_string (Tbl.render tbl);
    print_newline ();
    let mean = List.fold_left ( +. ) 0.0 utils /. float_of_int (List.length utils) in
    Printf.printf "pool window %s, mean utilization %.0f%% over %d domain(s)\n\n"
      (fus window) mean (List.length utils);
    Some mean

(* Streamed engine replays emit one "engine.segment" Complete slice per
   consumed segment window, carrying the blocks consumed as its payload.
   Summarize them per domain so utilization assertions stay meaningful
   when cells stream instead of holding a packed image. *)
let engine_segments slices =
  let segs = List.filter (fun s -> s.s_name = "engine.segment") slices in
  if segs <> [] then begin
    section "engine segments (streamed replay windows)";
    let tbl =
      Tbl.create
        ~headers:
          [
            ("domain", Tbl.Left);
            ("segments", Tbl.Right);
            ("blocks", Tbl.Right);
            ("total", Tbl.Right);
            ("mean", Tbl.Right);
          ]
    in
    List.iter
      (fun (tid, pairs) ->
        let n = List.length pairs in
        let total = List.fold_left (fun acc (d, _) -> acc +. d) 0.0 pairs in
        let blocks = List.fold_left (fun acc (_, b) -> acc + b) 0 pairs in
        Tbl.add_row tbl
          [
            Printf.sprintf "domain-%d" tid;
            string_of_int n;
            string_of_int blocks;
            fus total;
            fus (total /. float_of_int n);
          ])
      (List.sort compare
         (group_by (fun s -> s.s_tid) (fun s -> (s.s_dur, s.s_bytes)) segs));
    print_string (Tbl.render tbl);
    Printf.printf "%d segment window(s) across %d domain(s)\n\n"
      (List.length segs)
      (List.length
         (List.sort_uniq compare (List.map (fun s -> s.s_tid) segs)))
  end

(* Fused replay banks emit one "engine.fused" Complete slice per
   per-layout sweep, carrying the number of cells fused into it.  Sweeps
   are few and long — list each one. *)
let fused_sweeps slices =
  let fs = List.filter (fun s -> s.s_name = "engine.fused") slices in
  if fs <> [] then begin
    section "fused sweeps (engine.fused)";
    let tbl =
      Tbl.create
        ~headers:
          [ ("domain", Tbl.Left); ("cells", Tbl.Right); ("wall", Tbl.Right) ]
    in
    List.iter
      (fun s ->
        Tbl.add_row tbl
          [
            Printf.sprintf "domain-%d" s.s_tid;
            string_of_int s.s_bytes;
            fus s.s_dur;
          ])
      fs;
    print_string (Tbl.render tbl);
    let cells = List.fold_left (fun acc s -> acc + s.s_bytes) 0 fs in
    Printf.printf "%d sweep(s) fusing %d cell(s), %.1f cells/sweep\n\n"
      (List.length fs) cells
      (float_of_int cells /. float_of_int (List.length fs))
  end

let top_cells slices top =
  let cells =
    List.filter (fun s -> String.starts_with ~prefix:"cell:" s.s_name) slices
  in
  if cells <> [] then begin
    section (Printf.sprintf "slowest cells (top %d of %d)" top
       (List.length cells));
    let sorted =
      List.sort (fun a b -> compare b.s_dur a.s_dur) cells
    in
    let tbl =
      Tbl.create
        ~headers:
          [ ("cell", Tbl.Left); ("domain", Tbl.Right); ("wall", Tbl.Right) ]
    in
    List.iteri
      (fun i s ->
        if i < top then
          Tbl.add_row tbl
            [ s.s_name; string_of_int s.s_tid; fus s.s_dur ])
      sorted;
    print_string (Tbl.render tbl);
    print_newline ()
  end

let store_split slices =
  let ops =
    List.filter
      (fun s -> String.starts_with ~prefix:"store." s.s_name)
      slices
  in
  if ops <> [] then begin
    section "store time split";
    let tbl =
      Tbl.create
        ~headers:
          [
            ("op", Tbl.Left);
            ("calls", Tbl.Right);
            ("total", Tbl.Right);
            ("bytes", Tbl.Right);
          ]
    in
    List.iter
      (fun (name, pairs) ->
        let total = List.fold_left (fun acc (d, _) -> acc +. d) 0.0 pairs in
        let bytes = List.fold_left (fun acc (_, b) -> acc + b) 0 pairs in
        Tbl.add_row tbl
          [
            name;
            string_of_int (List.length pairs);
            fus total;
            string_of_int bytes;
          ])
      (group_by (fun s -> s.s_name) (fun s -> (s.s_dur, s.s_bytes)) ops);
    print_string (Tbl.render tbl);
    print_newline ()
  end

let () =
  let file, top, assert_util = parse_args () in
  let doc =
    match
      let ic = open_in file in
      let doc = really_input_string ic (in_channel_length ic) in
      close_in ic;
      doc
    with
    | exception Sys_error e ->
      Printf.eprintf "trace_report: %s\n" e;
      exit 2
    | doc -> doc
  in
  let events =
    match Json.of_string (String.trim doc) with
    | exception Failure e ->
      Printf.eprintf "trace_report: %s: %s\n" file e;
      exit 2
    | Json.List evs -> List.map ev_of_json evs
    | _ ->
      Printf.eprintf "trace_report: %s: not a trace_event array\n" file;
      exit 2
  in
  let real = List.filter (fun e -> e.e_ph <> "M") events in
  if real = [] then begin
    Printf.eprintf "trace_report: %s: no events\n" file;
    exit 2
  end;
  let slices, unbalanced = slices real in
  let domains =
    List.sort_uniq compare (List.map (fun e -> e.e_tid) real)
  in
  let lo, hi =
    List.fold_left
      (fun (lo, hi) e ->
        (Float.min lo e.e_ts, Float.max hi (e.e_ts +. e.e_dur)))
      (Float.max_float, 0.0) real
  in
  Printf.printf "%s: %d events on %d domain(s), wall clock %s\n" file
    (List.length real) (List.length domains)
    (fus (hi -. lo));
  if unbalanced > 0 then
    Printf.printf "(%d unbalanced begin/end event(s) — ring truncation?)\n"
      unbalanced;
  print_newline ();
  top_level_table slices;
  let mean_util = pool_utilization slices in
  engine_segments slices;
  fused_sweeps slices;
  top_cells slices top;
  store_split slices;
  match assert_util with
  | None -> ()
  | Some pct -> (
    match mean_util with
    | Some mean when mean >= pct ->
      Printf.printf "utilization assertion: %.0f%% >= %.0f%% ok\n" mean pct
    | Some mean ->
      Printf.eprintf
        "trace_report: mean pool utilization %.0f%% below required %.0f%%\n"
        mean pct;
      exit 1
    | None ->
      Printf.eprintf
        "trace_report: --assert-utilization given but trace has no pool.chunk \
         slices\n";
      exit 1)
