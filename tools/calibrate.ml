(* Calibration report: compare the synthetic kernel's static and dynamic
   shape statistics against the paper's characterization (Tables 1-2,
   Figure 2). Used when tuning the generator knobs in lib/synth.

   Usage: dune exec tools/calibrate.exe [SF] *)

let () =
  let t0 = Unix.gettimeofday () in
  let kernel = Stc_synth.Kernel.build () in
  let t1 = Unix.gettimeofday () in
  let c = Stc_cfg.Program.static_counts kernel.Stc_synth.Kernel.program in
  Printf.printf "kernel: %.2fs procs=%d blocks=%d instrs=%d\n%!" (t1 -. t0)
    c.Stc_cfg.Program.n_procs c.Stc_cfg.Program.n_blocks c.Stc_cfg.Program.n_instrs;
  let sf = try float_of_string Sys.argv.(1) with _ -> 0.002 in
  let t0 = Unix.gettimeofday () in
  let data = Stc_dbdata.Datagen.generate ~sf () in
  let db_b = Stc_db.Database.load data ~kind:Stc_db.Database.Btree_db in
  let db_h = Stc_db.Database.load data ~kind:Stc_db.Database.Hash_db in
  let t1 = Unix.gettimeofday () in
  Printf.printf "load sf=%.4f: %.2fs lineitem=%d rows\n%!" sf (t1 -. t0)
    (Stc_dbdata.Datagen.row_count data "lineitem");
  (* training *)
  let t0 = Unix.gettimeofday () in
  let tr = Stc_workload.Driver.record ~kernel ~walker_seed:1L
      ~dbs:[("btree", db_b)] ~queries:Stc_workload.Queries.training_set () in
  let t1 = Unix.gettimeofday () in
  Printf.printf "training trace: %.2fs blocks=%d\n%!" (t1 -. t0) (Stc_trace.Recorder.length tr);
  let t0 = Unix.gettimeofday () in
  let te = Stc_workload.Driver.record ~kernel ~walker_seed:2L
      ~dbs:[("btree", db_b); ("hash", db_h)] ~queries:Stc_workload.Queries.test_set () in
  let t1 = Unix.gettimeofday () in
  Printf.printf "test trace: %.2fs blocks=%d\n%!" (t1 -. t0) (Stc_trace.Recorder.length te);
  (* profile the training set *)
  let t0 = Unix.gettimeofday () in
  let p = Stc_profile.Profile.create kernel.Stc_synth.Kernel.program in
  Stc_trace.Source.iter
    (Stc_trace.Source.of_recorder tr)
    (Stc_profile.Profile.sink p);
  let t1 = Unix.gettimeofday () in
  let fp = Stc_profile.Footprint.compute p in
  Printf.printf "profile: %.2fs\n%!" (t1 -. t0);
  Printf.printf "footprint: procs %d/%d (%.1f%%) blocks %d/%d (%.1f%%) instrs %d/%d (%.1f%%)\n%!"
    fp.Stc_profile.Footprint.procs_executed fp.procs_total (Stc_profile.Footprint.pct fp.procs_executed fp.procs_total)
    fp.blocks_executed fp.blocks_total (Stc_profile.Footprint.pct fp.blocks_executed fp.blocks_total)
    fp.instrs_executed fp.instrs_total (Stc_profile.Footprint.pct fp.instrs_executed fp.instrs_total);
  let pop = Stc_profile.Popularity.compute p in
  Printf.printf "popularity: 90%% in %d blocks, 99%% in %d blocks (executed %d)\n%!"
    (Stc_profile.Popularity.blocks_for_share pop 0.90)
    (Stc_profile.Popularity.blocks_for_share pop 0.99)
    (Stc_profile.Popularity.executed_blocks pop);
  (* executed procs by name prefix *)
  let prog = kernel.Stc_synth.Kernel.program in
  let buckets = Hashtbl.create 8 in
  Array.iter (fun pr ->
    if Stc_profile.Profile.proc_entry_count p pr.Stc_cfg.Proc.pid > 0 then begin
      let name = pr.Stc_cfg.Proc.name in
      let prefix = try String.sub name 0 (String.index name '_') with Not_found -> "eng" in
      let prefix = if String.length prefix > 5 then "eng" else prefix in
      Hashtbl.replace buckets prefix (1 + Option.value ~default:0 (Hashtbl.find_opt buckets prefix))
    end) prog.Stc_cfg.Program.procs;
  Hashtbl.iter (fun k v -> Printf.printf "  executed %s: %d\n" k v) buckets;
  let det = Stc_profile.Determinism.compute p in
  List.iter (fun r ->
    Printf.printf "%-18s static %.1f%% dynamic %.1f%% predictable %.1f%%\n"
      (Stc_cfg.Terminator.kind_name r.Stc_profile.Determinism.kind)
      r.static_pct r.dynamic_pct r.predictable_pct) det.Stc_profile.Determinism.rows;
  Printf.printf "overall predictable: %.1f%%\n%!" det.overall_predictable_pct
