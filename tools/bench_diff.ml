(* Tolerance-aware comparison of two BENCH_*.json artifacts.

     bench_diff BASELINE CURRENT [--tolerance PCT]

   Both files are JSONL: one provenance-stamped record per bench part
   (bench/main.ml appends one line per part, keyed by its "mode" field
   — "packed", "naive", "stream", "fused", ...). For every mode present
   in the baseline, every throughput field (any numeric field whose
   name ends in "blocks_per_sec" — higher is better) must not fall more
   than PCT percent (default 25) below the baseline value. Wall-clock
   and speedup fields are ignored: they restate the same measurement
   and would double-report every regression.

   A mode present in the baseline but absent from the current run is a
   failure (a silently dropped benchmark must not pass the gate); a new
   mode only in the current run is reported and allowed, so baselines
   can trail new bench parts. Provenance differences (host, commit,
   jobs) are printed for context, never compared — the tolerance is
   what absorbs machine variance.

   Exit codes: 0 within tolerance, 1 regression or dropped mode,
   2 usage/parse error. *)

module J = Stc_obs.Json

let usage () =
  prerr_endline "usage: bench_diff BASELINE CURRENT [--tolerance PCT]";
  exit 2

let parse_args () =
  let files = ref [] and tolerance = ref 25.0 in
  let rec go = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> tolerance := t
      | _ -> usage ());
      go rest
    | f :: rest ->
      files := f :: !files;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline; current ] -> (baseline, current, !tolerance)
  | _ -> usage ()

let load path =
  match
    let ic = open_in path in
    let doc = really_input_string ic (in_channel_length ic) in
    close_in ic;
    doc
  with
  | exception Sys_error e ->
    Printf.eprintf "bench_diff: %s\n" e;
    exit 2
  | doc -> (
    match J.lines doc with
    | exception Failure e ->
      Printf.eprintf "bench_diff: %s: %s\n" path e;
      exit 2
    | [] ->
      Printf.eprintf "bench_diff: %s: no records\n" path;
      exit 2
    | records -> records)

let mode_of record =
  match J.member "mode" record with Some (J.Str m) -> Some m | _ -> None

(* Last record wins per mode: bench parts append, so a rerun's fresh
   line supersedes any stale one left in the file. *)
let by_mode records =
  List.fold_left
    (fun acc r ->
      match mode_of r with
      | Some m -> (m, r) :: List.remove_assoc m acc
      | None -> acc)
    [] records
  |> List.rev

let throughput_fields record =
  match record with
  | J.Obj fields ->
    List.filter_map
      (fun (name, v) ->
        let suffix = "blocks_per_sec" in
        let n = String.length name and s = String.length suffix in
        if n >= s && String.equal (String.sub name (n - s) s) suffix then
          Option.map (fun f -> (name, f)) (J.to_float v)
        else None)
      fields
  | _ -> []

let provenance_line path record =
  match J.member "provenance" record with
  | Some (J.Obj p) ->
    let str k =
      match List.assoc_opt k p with Some (J.Str s) -> s | _ -> "?"
    in
    let jobs =
      match List.assoc_opt "jobs" p with Some (J.Int j) -> j | _ -> 0
    in
    Printf.printf "  %s: commit %s, host %s, jobs %d\n" path (str "git_commit")
      (str "hostname") jobs
  | _ -> ()

let () =
  let baseline_path, current_path, tolerance = parse_args () in
  let baseline = by_mode (load baseline_path) in
  let current = by_mode (load current_path) in
  (match (baseline, current) with
  | (_, b) :: _, (_, c) :: _ ->
    provenance_line baseline_path b;
    provenance_line current_path c
  | _ -> ());
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let compared = ref 0 in
  List.iter
    (fun (mode, base_record) ->
      match List.assoc_opt mode current with
      | None -> fail "mode %S: present in baseline, missing from current run" mode
      | Some cur_record ->
        List.iter
          (fun (field, base_v) ->
            match List.assoc_opt field (throughput_fields cur_record) with
            | None -> fail "mode %S: field %s missing from current run" mode field
            | Some cur_v ->
              incr compared;
              let floor = base_v *. (1.0 -. (tolerance /. 100.0)) in
              let delta_pct =
                if base_v = 0.0 then 0.0
                else (cur_v -. base_v) /. base_v *. 100.0
              in
              if cur_v < floor then
                fail
                  "mode %S: %s regressed %.1f%% (baseline %.0f, current %.0f, \
                   tolerance %.0f%%)"
                  mode field (-.delta_pct) base_v cur_v tolerance
              else
                Printf.printf "  mode %-8s %-24s %+7.1f%%  (%.0f -> %.0f)\n"
                  mode field delta_pct base_v cur_v)
          (throughput_fields base_record))
    baseline;
  List.iter
    (fun (mode, _) ->
      if not (List.mem_assoc mode baseline) then
        Printf.printf "  mode %-8s only in current run (no baseline yet)\n" mode)
    current;
  match List.rev !failures with
  | [] ->
    Printf.printf
      "bench_diff: %d throughput field(s) within %.0f%% of %s\n" !compared
      tolerance baseline_path
  | msgs ->
    List.iter prerr_endline msgs;
    Printf.eprintf "bench_diff: %d regression(s) against %s\n"
      (List.length msgs) baseline_path;
    exit 1
