(* Golden-regression harness: regenerate the quick-config experiment
   outputs and diff them against committed snapshots.

     golden [--update] [--golden DIR] [--jobs N] [--seed N] [--stream]
            [--no-fuse] [--layouts CSV]

   One quick pipeline run (seeded, default 1) produces four artifacts:

     simulate_rows.txt   Experiments.simulate, one row_to_string per line
     ablation_rows.txt   Experiments.ablation, one line per sweep point
     extended_rows.txt   Experiments.extended (policy × prefetch grid),
                         one ext_row_to_string per line
     metrics.jsonl       the full Stc_obs.Export of the run

   Without --update each is compared against DIR (default "golden"): the
   row files byte for byte, the metrics export through Stc_obs.Diff with
   store.* ignored (the artifact store may or may not be warm) — which
   also ignores span seconds, so the comparison is stable across
   machines and --jobs values (the registry's determinism guarantee).
   A missing golden directory, a missing snapshot file or an empty one
   is a hard error (exit 2), never a silent pass: regenerate with
   --update and commit the result. The directory check runs before the
   pipeline, so a misconfigured checkout fails in milliseconds.

   --stream replays every simulation cell through the bounded segment
   pipeline (Engine.run_stream) instead of a materialized packed image;
   --no-fuse replays each cell with its own engine sweep instead of the
   default fused per-layout Engine.Bank sweeps.  The snapshots are
   shared: streaming and fusing are both required to be byte-identical,
   so the same golden/ directory checks every path.

   --layouts CSV restricts the per-CFA grid rows to the named layout
   algorithms (Stc_layout.Algo registry names; default all). The
   committed snapshots are generated with the default, so pass it only
   against a matching --golden directory.

   Exit codes: 0 clean, 1 drift, 2 usage/missing-snapshot error. *)

module E = Stc_core.Experiments
module Pipeline = Stc_core.Pipeline
module Run = Stc_core.Run
module Obs = Stc_obs

let usage () =
  prerr_endline
    "usage: golden [--update] [--golden DIR] [--jobs N] [--seed N] [--stream] \
     [--no-fuse] [--layouts CSV]";
  exit 2

let parse_args () =
  let update = ref false
  and dir = ref "golden"
  and jobs = ref 1
  and seed = ref 1
  and streamed = ref false
  and fused = ref true
  and layouts = ref None in
  let rec go = function
    | [] -> ()
    | "--update" :: rest ->
      update := true;
      go rest
    | "--stream" :: rest ->
      streamed := true;
      go rest
    | "--no-fuse" :: rest ->
      fused := false;
      go rest
    | "--golden" :: d :: rest ->
      dir := d;
      go rest
    | "--jobs" :: v :: rest ->
      (match int_of_string_opt v with Some j when j >= 1 -> jobs := j | _ -> usage ());
      go rest
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with Some s -> seed := s | _ -> usage ());
      go rest
    | "--layouts" :: v :: rest ->
      let names =
        String.split_on_char ',' v
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      (match E.resolve_layouts names with
      | Ok _ -> layouts := Some names
      | Error msg ->
        Printf.eprintf "golden: %s\n" msg;
        usage ());
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!update, !dir, !jobs, !seed, !streamed, !fused, !layouts)

let write_lines path lines =
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

let read_lines path =
  try
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        Ok (List.rev acc)
    in
    go []
  with Sys_error e -> Error e

(* First differing line wins the report; a length difference with a
   common prefix is reported as the first missing/extra line. *)
let diff_lines ~name golden current =
  let rec go i g c =
    match (g, c) with
    | [], [] -> []
    | g0 :: _, [] ->
      [ Printf.sprintf "%s: line %d missing (golden has %S)" name i g0 ]
    | [], c0 :: _ ->
      [ Printf.sprintf "%s: extra line %d %S" name i c0 ]
    | g0 :: gs, c0 :: cs ->
      if String.equal g0 c0 then go (i + 1) gs cs
      else
        [
          Printf.sprintf "%s: line %d differs\n  golden:  %s\n  current: %s"
            name i g0 c0;
        ]
  in
  go 1 golden current

let () =
  let update, dir, jobs, seed, streamed, fused, layouts = parse_args () in
  (* Refuse a comparison against nothing before paying for the run: an
     absent golden directory used to surface only as per-file read
     errors after the full pipeline had completed. *)
  if (not update) && not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf
      "golden: snapshot directory %s missing — run with --update and commit \
       the result\n"
      dir;
    exit 2
  end;
  let reg = Obs.Registry.create () in
  let ctx =
    Run.default |> Run.with_metrics reg |> Run.with_seed seed
    |> Run.with_jobs jobs
  in
  let pl = Pipeline.run ~ctx ~config:Pipeline.quick_config () in
  let sim_lines =
    List.map E.row_to_string (E.simulate ~ctx ~streamed ~fused ?layouts pl)
  in
  let abl_lines =
    List.map E.ablation_row_to_string (E.ablation ~ctx ~streamed ~fused pl)
  in
  let ext_lines =
    List.map E.ext_row_to_string (E.extended ~ctx ~streamed ~fused ?layouts pl)
  in
  let sim_path = Filename.concat dir "simulate_rows.txt" in
  let abl_path = Filename.concat dir "ablation_rows.txt" in
  let ext_path = Filename.concat dir "extended_rows.txt" in
  let met_path = Filename.concat dir "metrics.jsonl" in
  if update then begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    write_lines sim_path sim_lines;
    write_lines abl_path abl_lines;
    write_lines ext_path ext_lines;
    Obs.Export.write_file reg met_path;
    Printf.printf "golden: wrote %s, %s, %s, %s\n" sim_path abl_path ext_path
      met_path
  end
  else begin
    let require = function
      | Ok v -> v
      | Error e ->
        Printf.eprintf
          "golden: %s\ngolden: snapshot missing or unreadable — run with \
           --update and commit the result\n"
          e;
        exit 2
    in
    (* An empty row snapshot means a botched --update, not an empty
       grid: no configuration of the harness produces zero rows. *)
    let require_lines path =
      match require (read_lines path) with
      | [] ->
        Printf.eprintf
          "golden: %s is empty — snapshot damaged; run with --update and \
           commit the result\n"
          path;
        exit 2
      | lines -> lines
    in
    let sim_golden = require_lines sim_path in
    let abl_golden = require_lines abl_path in
    let ext_golden = require_lines ext_path in
    let met_golden = require (Obs.Diff.load_file met_path) in
    (* current metrics go through the same serialize/parse round trip *)
    let met_tmp = Filename.temp_file "golden_current" ".jsonl" in
    Obs.Export.write_file reg met_tmp;
    let met_current = require (Obs.Diff.load_file met_tmp) in
    Sys.remove met_tmp;
    let drift =
      diff_lines ~name:"simulate_rows" sim_golden sim_lines
      @ diff_lines ~name:"ablation_rows" abl_golden abl_lines
      @ diff_lines ~name:"extended_rows" ext_golden ext_lines
      @ fst
          (Obs.Diff.diff_records ~ignores:[ "store." ] ~a_label:met_path
             ~b_label:"current run" met_golden met_current)
    in
    match drift with
    | [] ->
      Printf.printf
        "golden: clean (%d simulate rows, %d ablation rows, %d extended \
         rows, %d metric records, jobs=%d, seed=%d%s)\n"
        (List.length sim_lines) (List.length abl_lines)
        (List.length ext_lines) (List.length met_golden) jobs seed
        ((if streamed then ", streamed" else "")
        ^ if fused then "" else ", no-fuse")
    | msgs ->
      List.iter print_endline msgs;
      Printf.printf "golden: %d drift(s) against %s\n" (List.length msgs) dir;
      exit 1
  end
